#include "service/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "harness/executor.hh"
#include "harness/figures.hh"
#include "harness/serialize.hh"
#include "harness/session.hh"
#include "prog/workloads/workloads.hh"
#include "service/http.hh"

namespace svw::service {

namespace {

/** Stop streaming into a connection whose client reads this far
 * behind; the session resumes once the buffer drains. */
constexpr std::size_t writeBackpressureBytes = 4 * 1024 * 1024;

/** parseFlagNumber's contract (bench_common.hh), restated here so the
 * service layer does not depend on bench headers: digits only,
 * fits uint64, else a usage error (exit 2). */
std::uint64_t
parseDaemonNumber(const std::string &text, const char *flag)
{
    const bool allDigits = !text.empty() &&
        text.find_first_not_of("0123456789") == std::string::npos;
    if (allDigits) {
        try {
            return std::stoull(text);
        } catch (const std::exception &) {  // out of range
        }
    }
    std::fprintf(stderr, "error: bad number '%s' for %s\n", text.c_str(),
                 flag);
    std::exit(2);
}

/** Form-parameter number: returns false on malformed/oversized input
 * instead of exiting (a bad request is the client's bug, not ours). */
bool
parseParamNumber(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    try {
        out = std::stoull(text);
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

} // namespace

SweepdOptions
parseSweepdArgs(int argc, char **argv)
{
    SweepdOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--port=", 0) == 0) {
            const std::uint64_t p =
                parseDaemonNumber(a.substr(7), "--port");
            if (p > 65535) {
                std::fprintf(stderr,
                             "error: --port value '%s' out of range\n",
                             a.substr(7).c_str());
                std::exit(2);
            }
            opts.port = static_cast<unsigned>(p);
        } else if (a.rfind("--bind=", 0) == 0) {
            opts.bindAddr = a.substr(7);
            if (opts.bindAddr.empty()) {
                std::fprintf(stderr,
                             "error: --bind needs an address\n");
                std::exit(2);
            }
        } else if (a.rfind("--cache-dir=", 0) == 0) {
            opts.cacheDir = a.substr(12);
        } else if (a.rfind("--mem-cache-max-mb=", 0) == 0) {
            opts.memCacheMaxMb =
                parseDaemonNumber(a.substr(19), "--mem-cache-max-mb");
        } else if (a == "--quiet") {
            opts.quiet = true;
        } else {
            std::fprintf(stderr,
                         "error: unknown arg %s\n"
                         "usage: %s [--port=N] [--bind=ADDR]"
                         " [--cache-dir=D] [--mem-cache-max-mb=N]"
                         " [--quiet]\n",
                         a.c_str(), argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

/**
 * One client connection's state machine: reading the request, then
 * (for /sweep) producing the streamed response from an incremental
 * SweepSession, then draining the write buffer and closing.
 */
struct SweepServer::Conn
{
    Conn(int f, const SweepdOptions &o)
        : fd(f), parser(o.maxHeadBytes, o.maxBodyBytes)
    {}

    int fd = -1;
    HttpParser parser;
    std::string out;            ///< bytes awaiting the socket
    bool responding = false;    ///< request complete; producing output
    bool closeAfterFlush = false;
    bool dead = false;
    std::unique_ptr<harness::SweepSession> session;
};

SweepServer::SweepServer(SweepdOptions opts) : opts_(std::move(opts))
{
    if (::pipe2(stopPipe_, O_NONBLOCK | O_CLOEXEC) != 0)
        throw std::runtime_error("sweepd: pipe2 failed");

    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("sweepd: socket failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.bindAddr.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("sweepd: bad bind address " +
                                 opts_.bindAddr);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throw std::runtime_error(
            "sweepd: cannot bind " + opts_.bindAddr + ":" +
            std::to_string(opts_.port) + ": " + std::strerror(errno));
    if (::listen(listenFd_, 64) != 0)
        throw std::runtime_error("sweepd: listen failed");

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    harness::processMemoryResultCache().setMaxBytes(
        opts_.memCacheMaxMb * 1024ull * 1024ull);
}

SweepServer::~SweepServer()
{
    // Conn dtors run first conceptually: an active SweepSession's own
    // destructor discards pending units and joins its workers, so
    // tearing the server down mid-sweep is safe.
    for (auto &c : conns_)
        if (c->fd >= 0)
            ::close(c->fd);
    conns_.clear();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int fd : stopPipe_)
        if (fd >= 0)
            ::close(fd);
}

void
SweepServer::requestStop()
{
    const char b = 's';
    // Async-signal-safe: one write syscall, no locks, no allocation.
    [[maybe_unused]] const ssize_t n = ::write(stopPipe_[1], &b, 1);
}

void
SweepServer::acceptClients()
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            return;  // EAGAIN or transient accept error: poll again
        conns_.push_back(std::make_unique<Conn>(fd, opts_));
    }
}

void
SweepServer::readConn(Conn &c)
{
    char chunk[8192];
    for (;;) {
        const ssize_t n = ::read(c.fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            failConn(c);
            return;
        }
        if (n == 0) {
            // EOF. Mid-request it is an abandoned request; mid-stream
            // it is the client disconnect that must abort only this
            // connection's session.
            failConn(c);
            return;
        }
        if (c.responding) {
            // One request per connection: bytes after the request are
            // a protocol violation, not a second request.
            failConn(c);
            return;
        }
        const HttpParser::Status st =
            c.parser.feed(chunk, static_cast<std::size_t>(n));
        if (st == HttpParser::Status::Error) {
            c.out += simpleResponse(
                400, "Bad Request", "text/plain",
                "error: " + c.parser.error() + "\n");
            c.responding = true;
            c.closeAfterFlush = true;
            flushConn(c);
            return;
        }
        if (st == HttpParser::Status::Complete) {
            c.responding = true;
            dispatch(c);
            return;
        }
    }
}

std::string
SweepServer::statusJson() const
{
    const auto &mem = harness::processMemoryResultCache();
    std::size_t active = 0;
    for (const auto &c : conns_)
        if (c->session)
            ++active;
    std::string j = "{";
    j += "\"programBuilds\":" +
        std::to_string(harness::processProgramCache().builds());
    j += ",\"runCellCalls\":" +
        std::to_string(harness::runCellCalls());
    j += ",\"memCacheEntries\":" + std::to_string(mem.entries());
    j += ",\"memCacheBytes\":" + std::to_string(mem.bytes());
    j += ",\"memCacheMaxBytes\":" + std::to_string(mem.maxBytes());
    j += ",\"memCacheHits\":" + std::to_string(mem.hits());
    j += ",\"memCacheEvictions\":" + std::to_string(mem.evictions());
    j += ",\"activeSessions\":" + std::to_string(active);
    j += ",\"sessionsServed\":" + std::to_string(sessionsServed_);
    j += std::string(",\"draining\":") +
        (stopping_ ? "true" : "false");
    j += "}\n";
    return j;
}

void
SweepServer::dispatch(Conn &c)
{
    const HttpRequest &req = c.parser.request();
    if (!opts_.quiet)
        std::fprintf(stderr, "sweepd: %s %s\n", req.method.c_str(),
                     req.target.c_str());

    if (req.method == "GET" && req.target == "/status") {
        c.out += simpleResponse(200, "OK", "application/json",
                                statusJson());
        c.closeAfterFlush = true;
    } else if (req.method == "GET" && req.target == "/figures") {
        std::string j = "[";
        bool first = true;
        for (const auto &def : harness::figureRegistry()) {
            if (!first)
                j += ",";
            first = false;
            j += "{\"name\":\"" + harness::jsonEscape(def.name) +
                "\",\"title\":\"" + harness::jsonEscape(def.title) +
                "\"}";
        }
        j += "]\n";
        c.out += simpleResponse(200, "OK", "application/json", j);
        c.closeAfterFlush = true;
    } else if (req.method == "POST" && req.target == "/sweep") {
        startSweep(c);
    } else {
        c.out += simpleResponse(404, "Not Found", "text/plain",
                                "error: no such endpoint\n");
        c.closeAfterFlush = true;
    }
    flushConn(c);
}

void
SweepServer::startSweep(Conn &c)
{
    const auto params = parseFormBody(c.parser.request().body);
    auto reject = [&](const std::string &why) {
        c.out += simpleResponse(400, "Bad Request", "text/plain",
                                "error: " + why + "\n");
        c.closeAfterFlush = true;
    };

    if (stopping_)
        return reject("daemon is draining");

    auto figIt = params.find("figure");
    if (figIt == params.end() || figIt->second.empty())
        return reject("missing 'figure' parameter");
    const harness::FigureDef *def = harness::findFigure(figIt->second);
    if (!def)
        return reject("unknown figure '" + figIt->second +
                      "' (GET /figures lists them)");

    harness::Families families = harness::Families::Paper;
    if (auto it = params.find("families"); it != params.end())
        if (!harness::parseFamilies(it->second, families))
            return reject("bad 'families' value '" + it->second +
                          "' (want paper|synth|all)");

    std::vector<std::string> suite;
    if (auto it = params.find("bench");
        it != params.end() && !it->second.empty()) {
        std::string err;
        if (!workloads::validate(it->second, err))
            return reject("bad 'bench' workload: " + err);
        suite = {it->second};
    } else {
        suite = harness::familySuite(families, def->paperSuite());
    }

    std::uint64_t insts = 100'000;
    if (auto it = params.find("quick");
        it != params.end() && it->second != "0")
        insts = 20'000;
    if (auto it = params.find("insts"); it != params.end())
        if (!parseParamNumber(it->second, insts) || insts == 0)
            return reject("bad 'insts' value '" + it->second + "'");

    std::uint64_t batch = 0, threads = 0;
    if (auto it = params.find("batch"); it != params.end())
        if (!parseParamNumber(it->second, batch) || batch > 1024)
            return reject("bad 'batch' value '" + it->second + "'");
    if (auto it = params.find("threads"); it != params.end())
        if (!parseParamNumber(it->second, threads) || threads > 256)
            return reject("bad 'threads' value '" + it->second + "'");

    harness::SweepOptions sopts;
    sopts.threads = static_cast<unsigned>(threads);
    sopts.batch = static_cast<unsigned>(batch);
    sopts.cacheDir = opts_.cacheDir;
    // The daemon's reason to exist: the process-wide memory result
    // cache serves warm repeats even with no disk cache configured.
    sopts.memCache = true;

    c.out += chunkedResponseHead(200, "OK", "application/x-ndjson");

    Conn *conn = &c;
    auto cb = [this, conn](const harness::CellEvent &ev) {
        const char *kind =
            ev.kind == harness::CellEventKind::Started ? "started"
            : ev.kind == harness::CellEventKind::CachedHit ? "cached"
                                                           : "done";
        std::string line = std::string("{\"event\":\"") + kind +
            "\",\"cell\":" + std::to_string(ev.index) + ",\"name\":\"" +
            harness::jsonEscape(ev.cell->name()) + "\"";
        if (ev.outcome)
            line += std::string(",\"ok\":") +
                (ev.outcome->ok ? "true" : "false");
        line += "}\n";
        conn->out += encodeChunk(line);
        // The lossless per-cell result, byte-identical to the CLI
        // binaries' --emit-cells lines, as its own stream line.
        if (!ev.resultLine.empty())
            conn->out += encodeChunk(ev.resultLine + "\n");
    };

    try {
        c.session = std::make_unique<harness::SweepSession>(
            def->build(suite, insts), sopts);
        c.session->start(cb);
    } catch (const std::exception &e) {
        // Headers are already queued, so stream the failure as the
        // final event rather than a status line.
        c.session.reset();
        c.out += encodeChunk(std::string("{\"event\":\"error\",") +
                             "\"message\":\"" +
                             harness::jsonEscape(e.what()) + "\"}\n");
        c.out += finalChunk();
        c.closeAfterFlush = true;
        ++sessionsServed_;
        return;
    }
    if (c.session->finished())
        finishSession(c);
}

void
SweepServer::finishSession(Conn &c)
{
    const std::size_t cells = c.session->cellsSelected();
    const std::size_t failures = c.session->failuresSoFar();
    const std::size_t hits = c.session->cacheHits();
    c.session->finish();
    c.session.reset();
    std::string line = "{\"event\":\"finished\",\"cells\":" +
        std::to_string(cells) + ",\"failures\":" +
        std::to_string(failures) + ",\"cacheHits\":" +
        std::to_string(hits) + "}\n";
    c.out += encodeChunk(line);
    c.out += finalChunk();
    c.closeAfterFlush = true;
    ++sessionsServed_;
    if (!opts_.quiet)
        std::fprintf(stderr,
                     "sweepd: session done (%zu cells, %zu cached,"
                     " %zu failed)\n",
                     cells, hits, failures);
}

void
SweepServer::failConn(Conn &c)
{
    if (c.session) {
        // Abort only this connection's session: pending units are
        // dropped; the in-flight one (if threaded) completes inside
        // finish() and its result still reaches the caches.
        c.session->abort();
        c.session->finish();
        c.session.reset();
        ++sessionsServed_;
        if (!opts_.quiet)
            std::fprintf(stderr,
                         "sweepd: client disconnected; session"
                         " aborted\n");
    }
    c.dead = true;
}

void
SweepServer::flushConn(Conn &c)
{
    while (!c.out.empty()) {
        const ssize_t n =
            ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            c.out.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        failConn(c);  // EPIPE/ECONNRESET: the mid-stream disconnect
        return;
    }
    if (c.closeAfterFlush)
        c.dead = true;
}

void
SweepServer::stepConn(Conn &c)
{
    if (!c.session)
        return;
    try {
        const bool more = c.session->step();
        if (!more || c.session->finished())
            finishSession(c);
    } catch (const std::exception &e) {
        // step() contains per-unit failures; anything escaping is an
        // engine-level fault. Report it on this stream and keep the
        // daemon alive.
        c.session.reset();
        c.out += encodeChunk(std::string("{\"event\":\"error\",") +
                             "\"message\":\"" +
                             harness::jsonEscape(e.what()) + "\"}\n");
        c.out += finalChunk();
        c.closeAfterFlush = true;
        ++sessionsServed_;
    }
    flushConn(c);
}

void
SweepServer::run()
{
    std::vector<pollfd> fds;
    std::vector<Conn *> owner;
    while (!(stopping_ && conns_.empty())) {
        fds.clear();
        owner.clear();
        fds.push_back(pollfd{stopPipe_[0], POLLIN, 0});
        owner.push_back(nullptr);
        if (!stopping_ && listenFd_ >= 0) {
            fds.push_back(pollfd{listenFd_, POLLIN, 0});
            owner.push_back(nullptr);
        }

        bool runnable = false;
        for (auto &cp : conns_) {
            Conn &c = *cp;
            short events = POLLIN;
            if (!c.out.empty())
                events |= POLLOUT;
            fds.push_back(pollfd{c.fd, events, 0});
            owner.push_back(&c);
            if (c.session) {
                const bool backpressured =
                    c.out.size() >= writeBackpressureBytes;
                const int wake = c.session->wakeFd();
                if (wake >= 0 && !backpressured) {
                    // Threaded session: completions arrive via pipe.
                    fds.push_back(pollfd{wake, POLLIN, 0});
                    owner.push_back(&c);
                } else if (wake < 0 && !backpressured &&
                           !c.session->finished()) {
                    // In-caller session: a unit runs this loop turn.
                    runnable = true;
                }
            }
        }

        const int timeout = runnable ? 0 : -1;
        if (::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   timeout) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        if (fds[0].revents & POLLIN) {
            char drain[64];
            while (::read(stopPipe_[0], drain, sizeof(drain)) > 0) {
            }
            if (!stopping_) {
                stopping_ = true;
                ::close(listenFd_);
                listenFd_ = -1;
                if (!opts_.quiet)
                    std::fprintf(stderr, "sweepd: draining (%zu"
                                         " connection(s) open)\n",
                                 conns_.size());
            }
        }

        for (std::size_t i = 1; i < fds.size(); ++i) {
            Conn *c = owner[i];
            if (!c) {
                if (fds[i].revents & POLLIN)
                    acceptClients();
                continue;
            }
            if (c->dead || fds[i].revents == 0)
                continue;
            if (fds[i].fd == c->fd) {
                if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
                    // POLLHUP with streamed data still buffered means
                    // the peer is gone; treat like a failed write.
                    if (c->responding || !(fds[i].revents & POLLIN)) {
                        failConn(*c);
                        continue;
                    }
                }
                if (fds[i].revents & POLLOUT)
                    flushConn(*c);
                if (!c->dead && (fds[i].revents & POLLIN))
                    readConn(*c);
            } else if (fds[i].revents & POLLIN) {
                stepConn(*c);  // session wakeFd: drain completions
            }
        }

        // One in-caller co-simulation unit per loop turn per session:
        // long sweeps interleave with socket work and each other.
        for (auto &cp : conns_) {
            Conn &c = *cp;
            if (!c.dead && c.session && c.session->wakeFd() < 0 &&
                c.out.size() < writeBackpressureBytes)
                stepConn(c);
        }

        for (auto it = conns_.begin(); it != conns_.end();) {
            if ((*it)->dead) {
                ::close((*it)->fd);
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
}

} // namespace svw::service
