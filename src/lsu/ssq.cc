/**
 * @file
 * SSQ execution path (Figure 2c): steered loads search the small FSQ
 * (one port); everything else takes its chances with the per-bank
 * best-effort forwarding buffer or the cache. All SSQ loads are marked
 * for re-execution, which is what makes the speculation safe.
 */

#include "base/intmath.hh"
#include "lsu/lsu.hh"

namespace svw {

LoadExecResult
LoadStoreUnit::searchSsq(DynInst &load, Cycle now)
{
    LoadExecResult res;

    // Note ambiguous older stores for statistics/NLQ composition; the
    // SSQ itself marks every load regardless.
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        DynInst *st = *it;
        if (st->seq > load.seq)
            continue;
        if (!st->addrResolved) {
            res.sawAmbiguousOlderStore = true;
            break;
        }
    }

    if (load.fsqLoad) {
        // One FSQ search per cycle.
        if (now != fsqPortCycle) {
            fsqPortCycle = now;
            fsqPortUsed = 0;
        }
        if (fsqPortUsed >= prm.fsqPorts) {
            res.status = LoadExecResult::Status::BlockedPort;
            return res;
        }
        ++fsqPortUsed;

        // Youngest-first search of FSQ stores older than the load.
        for (auto it = fsq.rbegin(); it != fsq.rend(); ++it) {
            DynInst *st = *it;
            if (st->seq > load.seq)
                continue;
            if (!st->addrResolved)
                continue;
            if (!rangesOverlap(st->addr, st->size, load.addr, load.size))
                continue;
            if (rangeContains(st->addr, st->size, load.addr, load.size) &&
                st->dataResolved) {
                ++hot.fsqForwards;
                res.forwarded = true;
                res.fwdSsn = st->ssn;
                res.value = extractForward(*st, load);
                return res;
            }
            ++hot.partialBlocks;
            res.status = LoadExecResult::Status::BlockedPartial;
            return res;
        }
        // Steered but no FSQ producer: fall through to the cache.
        res.value = committed.read(load.addr, load.size);
        return res;
    }

    // Unsteered load: best-effort buffer at the target bank, newest
    // entry first. Exact address/size match required; the entry is not
    // guaranteed to be the architecturally correct producer.
    const unsigned bank = static_cast<unsigned>(load.addr >> 6) & 1;
    const auto &buf = fwdBufs[bank];
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
        if (it->addr == load.addr && it->size == load.size) {
            ++hot.bestEffortHits;
            res.forwarded = true;
            res.bestEffort = true;
            res.value = it->value;
            return res;
        }
    }
    res.value = committed.read(load.addr, load.size);
    return res;
}

} // namespace svw
