/**
 * @file
 * Load-store unit supporting the paper's three organizations, composably:
 *
 *  - Conventional (Figure 2a): associative SQ search for store-to-load
 *    forwarding; associative LQ search at store resolution for
 *    memory-ordering violations; one store issue per cycle (the LQ CAM
 *    port); under Figure 6's baseline the big associative SQ adds two
 *    cycles to every load.
 *  - NLQ (Figure 2b): the LQ CAM is removed (two stores may issue per
 *    cycle); loads that issue past older unresolved stores are marked
 *    for pre-commit re-execution.
 *  - SSQ (Figure 2c): the SQ splits into a non-associative RSQ (all
 *    stores; off the load path) and a small single-ported FSQ holding
 *    only predicted-forwarding stores; other loads use best-effort
 *    per-bank forwarding buffers. Every load is marked for re-execution.
 *
 * Values: a load takes its value from a forwarding structure or from the
 * committed memory image at issue time — so premature loads naturally
 * read stale values, which is what re-execution later detects.
 */

#ifndef SVW_LSU_LSU_HH
#define SVW_LSU_LSU_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "base/types.hh"
#include "cpu/dyninst.hh"
#include "func/memory_image.hh"
#include "stats/stats.hh"
#include "svw/svw.hh"

namespace svw {

/** LSU configuration knobs (see file comment). */
struct LsuParams
{
    unsigned lqEntries = 128;
    unsigned sqEntries = 64;
    bool nlq = false;
    bool ssq = false;
    unsigned fsqEntries = 16;
    unsigned fsqPorts = 1;
    unsigned fwdBufEntriesPerBank = 8;
    unsigned loadExtraLatency = 0;   ///< +2 under the associative-SQ baseline
    /** Value-aware LQ search: skip violations whose store wrote the
     * value the load already read (silent stores, section 2.2). */
    bool lqValueCheck = false;
    unsigned storeIssueWidth = 1;    ///< 2 once the LQ CAM is gone (NLQ)
    unsigned steeringEntries = 4096; ///< SSQ steering predictor bits
};

/** Outcome of attempting to execute a load this cycle. */
struct LoadExecResult
{
    enum class Status
    {
        Done,          ///< value obtained; see fields
        BlockedPartial,///< partial store overlap: retry later
        BlockedPort,   ///< structure port busy (FSQ): retry later
    };
    Status status = Status::Done;
    std::uint64_t value = 0;
    bool forwarded = false;      ///< value from an in-flight store
    bool bestEffort = false;     ///< value from a best-effort buffer
    SSN fwdSsn = 0;
    bool sawAmbiguousOlderStore = false;
    bool cacheMiss = false;
};

/**
 * The load/store unit. Owns the LQ/SQ (as age-ordered lists of DynInst
 * pointers into the ROB ring, whose slots are stable for an entry's
 * lifetime), the SSQ structures, and the steering predictor. Associative
 * searches walk the pointers directly; no per-entry ROB lookups.
 */
class LoadStoreUnit
{
  public:
    LoadStoreUnit(const LsuParams &params, MemoryImage &committed,
                  SvwUnit &svwUnit, stats::StatRegistry &reg);

    const LsuParams &params() const { return prm; }

    // --- dispatch ------------------------------------------------------
    bool lqFull() const { return lq.size() >= prm.lqEntries; }
    bool sqFull() const { return sq.size() >= prm.sqEntries; }
    /** FSQ allocation check for a steered store (SSQ). */
    bool fsqFullFor(const DynInst &store) const;

    void dispatchLoad(DynInst &load);
    void dispatchStore(DynInst &store);

    // --- execution -------------------------------------------------------
    /**
     * Execute a load whose address is in @p load.addr. Reads forwarding
     * structures / the committed image; does not model cache latency
     * (the core layers that on top).
     */
    LoadExecResult executeLoad(DynInst &load, Cycle now);

    /** A store's data became available (best-effort buffer insertion). */
    void storeDataReady(DynInst &store);

    /**
     * A store resolved its address (issued).
     * @return seq of the oldest younger load that already issued with an
     *         overlapping address (ordering violation; 0 = none).
     *         Always 0 when the LQ CAM is removed (NLQ).
     */
    InstSeqNum storeResolved(DynInst &store);

    /** Re-copy @p store's search-relevant fields into its mirror slot
     * (by-seq binary search; no-op if the store was already squashed).
     * The pipeline reaches this through storeResolved/storeDataReady;
     * tests that poke store fields directly call it to resync. */
    void refreshSqMirror(const DynInst &store);

    // --- retirement / squash --------------------------------------------
    void commitLoad(const DynInst &load);
    void commitStore(const DynInst &store);
    void squashAfter(InstSeqNum keepSeq);

    // --- SSQ steering predictor ------------------------------------------
    bool loadSteeredToFsq(std::uint64_t pc) const;
    bool storeSteeredToFsq(std::uint64_t pc) const;
    /** Train after a re-execution failure (missed forwarding). */
    void trainSteering(std::uint64_t loadPc, std::uint64_t storePc);

    std::size_t lqSize() const { return lq.size(); }
    std::size_t sqSize() const { return sq.size(); }
    std::size_t fsqSize() const { return fsq.size(); }

    /** Youngest in-flight store (nullptr if none); SSN rollback. */
    DynInst *youngestStore() const
    {
        return sq.empty() ? nullptr : sq.back();
    }

    /** Age-ordered in-flight stores. Checkpoint recovery reads the
     * squashed suffix (before squashAfter prunes it) to release the
     * stores' LFST claims without walking the ROB. */
    const std::vector<DynInst *> &storeQueue() const { return sq; }

    /** Seq of the youngest in-flight store (0 if none). */
    InstSeqNum youngestStoreSeq() const
    {
        return sq.empty() ? 0 : sq.back()->seq;
    }

  public:
    stats::Scalar forwards;
    stats::Scalar bestEffortHits;
    stats::Scalar partialBlocks;
    stats::Scalar lqSearches;
    stats::Scalar lqViolations;
    stats::Scalar fsqForwards;
    stats::Scalar fsqAllocStalls;
    stats::Scalar steeringTrainings;

  private:
    /** Dense hot-loop accumulators, bound to the Scalars above (see
     * stats::Scalar::bind). Cold-path increments (e.g. the core's
     * ++fsqAllocStalls) may still go through the Scalars directly. */
    struct HotCounters
    {
        std::uint64_t forwards = 0;
        std::uint64_t bestEffortHits = 0;
        std::uint64_t partialBlocks = 0;
        std::uint64_t lqSearches = 0;
        std::uint64_t lqViolations = 0;
        std::uint64_t fsqForwards = 0;
        std::uint64_t steeringTrainings = 0;
    };
    HotCounters hot;

    struct FwdBufEntry
    {
        Addr addr = 0;
        unsigned size = 0;
        std::uint64_t value = 0;
    };

    /**
     * Compact mirror of one SQ entry: everything the associative
     * forwarding search reads (searchSq), packed so the youngest-first
     * scan walks a dense array instead of dereferencing each store's
     * two-cache-line DynInst out of the ROB ring. Maintained strictly
     * in lockstep with @c sq (same order, same length): pushed at
     * dispatch, refreshed from the DynInst when the store's address and
     * data resolve (storeResolved / storeDataReady — the only points
     * those fields change), popped with commit and squash.
     */
    struct SqMirrorEntry
    {
        InstSeqNum seq = 0;
        Addr addr = 0;
        std::uint64_t data = 0;
        SSN ssn = 0;
        std::uint8_t size = 0;
        bool addrOk = false;
        bool dataOk = false;
    };

    /** Extract the bytes of @p load covered by @p store (full cover). */
    static std::uint64_t extractForward(const DynInst &store,
                                        const DynInst &load);

    /** Same, over a mirror entry's address/data. */
    static std::uint64_t extractForward(Addr stAddr, std::uint64_t stData,
                                        const DynInst &load);

    /** Conventional/NLQ path: associative SQ search. */
    LoadExecResult searchSq(DynInst &load);
    /** SSQ path: FSQ search (steered) or best-effort buffer. */
    LoadExecResult searchSsq(DynInst &load, Cycle now);

    unsigned steeringIndex(std::uint64_t pc) const
    {
        return static_cast<unsigned>(pc) & (prm.steeringEntries - 1);
    }

    LsuParams prm;
    MemoryImage &committed;
    SvwUnit &svw;

    std::vector<DynInst *> lq;   ///< age-ordered in-flight loads
    std::vector<DynInst *> sq;   ///< age-ordered in-flight stores
    std::vector<SqMirrorEntry> sqm;  ///< dense searchSq mirror of sq
    std::vector<DynInst *> fsq;  ///< subset of sq steered to the FSQ

    std::vector<std::deque<FwdBufEntry>> fwdBufs;  ///< per cache bank
    std::vector<bool> loadFsqBits;
    std::vector<bool> storeFsqBits;

    Cycle fsqPortCycle = ~Cycle(0);
    unsigned fsqPortUsed = 0;
};

namespace nlq {

/**
 * Cain & Lipasti's intra-thread filter heuristic (NLQ-LS): re-execute
 * only loads that issued in the presence of older unresolved stores.
 */
bool shouldMarkLoad(bool nlqEnabled, const LoadExecResult &res);

} // namespace nlq

} // namespace svw

#endif // SVW_LSU_LSU_HH
