/**
 * @file
 * Store PC Table (SPCT) — paper section 2.2.
 *
 * A small tagless table indexed by low-order address bits; each entry
 * holds the PC of the last retired store to write a matching address.
 * When re-execution flushes a load, the SPCT identifies the store that
 * (probably) collided with it so store-set style store-load pair
 * predictors — and the SSQ steering predictor — can be trained, which
 * the original NLQ proposal could not do.
 */

#ifndef SVW_LSU_SPCT_HH
#define SVW_LSU_SPCT_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace svw {

/** Tagless last-store-PC-per-address table. */
class SPCT
{
  public:
    explicit SPCT(unsigned entries = 512, unsigned granularityBytes = 8);

    /** Record a retired store. */
    void update(Addr addr, unsigned size, std::uint64_t storePc);

    /**
     * PC of the last retired store to (an alias of) @p addr.
     * @return ~0 if no store has touched the entry.
     */
    std::uint64_t lookup(Addr addr) const;

  private:
    unsigned granShift;
    std::vector<std::uint64_t> table;
};

} // namespace svw

#endif // SVW_LSU_SPCT_HH
