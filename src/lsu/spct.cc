#include "lsu/spct.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

SPCT::SPCT(unsigned entries, unsigned granularityBytes)
{
    svw_assert(isPowerOf2(entries), "SPCT entries");
    granShift = exactLog2(granularityBytes);
    table.assign(entries, ~std::uint64_t(0));
}

void
SPCT::update(Addr addr, unsigned size, std::uint64_t storePc)
{
    const Addr first = addr >> granShift;
    const Addr last = (addr + size - 1) >> granShift;
    for (Addr g = first; g <= last; ++g)
        table[g & (table.size() - 1)] = storePc;
}

std::uint64_t
SPCT::lookup(Addr addr) const
{
    return table[(addr >> granShift) & (table.size() - 1)];
}

} // namespace svw
