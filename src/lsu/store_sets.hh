/**
 * @file
 * Store-sets memory dependence predictor (Chrysos & Emer, ISCA '98),
 * used by every machine configuration in the paper to manage load
 * speculation.
 *
 * SSIT: PC-indexed table assigning loads/stores to store sets.
 * LFST: per-set tracker of the last fetched (dispatched) store; a load
 * in a set must wait for that store to resolve its address before
 * issuing.
 */

#ifndef SVW_LSU_STORE_SETS_HH
#define SVW_LSU_STORE_SETS_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "stats/stats.hh"

namespace svw {

/** Store-sets predictor. */
class StoreSets
{
  public:
    StoreSets(unsigned ssitEntries, unsigned lfstEntries,
              stats::StatRegistry &reg);

    /**
     * Dispatch-time lookup for a load: the store (by seq) this load must
     * wait for, or 0 if unconstrained.
     */
    InstSeqNum loadDependency(std::uint64_t loadPc) const;

    /**
     * Dispatch-time bookkeeping for a store. @return the older store
     * this store must order behind (in-set store-store ordering), or 0.
     */
    InstSeqNum storeDispatched(std::uint64_t storePc, InstSeqNum seq);

    /** A store resolved its address (issued); clears its LFST claim. */
    void storeResolved(std::uint64_t storePc, InstSeqNum seq);

    /** A store was squashed; clears its LFST claim. */
    void storeSquashed(std::uint64_t storePc, InstSeqNum seq);

    /** Train on a memory-ordering violation between a store and load. */
    void train(std::uint64_t storePc, std::uint64_t loadPc);

  public:
    stats::Scalar trainings;
    stats::Scalar loadsConstrained;

  private:
    static constexpr std::uint32_t noSet = ~std::uint32_t(0);

    struct LfstEntry
    {
        InstSeqNum storeSeq = 0;   ///< 0 = empty
        std::uint64_t storePc = 0;
    };

    std::uint32_t ssitIndex(std::uint64_t pc) const
    {
        return static_cast<std::uint32_t>(pc) & (ssitMask);
    }

    std::uint32_t ssitMask;
    std::vector<std::uint32_t> ssit;  ///< PC -> set id (noSet if none)
    std::vector<LfstEntry> lfst;
    std::uint32_t nextSetId = 0;
};

} // namespace svw

#endif // SVW_LSU_STORE_SETS_HH
