/**
 * @file
 * Conventional LSU paths: associative SQ search for forwarding and
 * associative LQ search (at store resolution) for ordering violations.
 * These also serve the NLQ organization, which keeps the SQ CAM but
 * removes the LQ CAM (storeResolved returns no violations; the marked
 * loads are verified by re-execution instead).
 */

#include "base/intmath.hh"
#include "lsu/lsu.hh"

namespace svw {

LoadExecResult
LoadStoreUnit::searchSq(DynInst &load)
{
    LoadExecResult res;

    // Youngest-first scan of older stores, over the dense SQ mirror
    // (sqm) rather than the DynInst pointers: the search is the hot
    // associative structure of the conventional/NLQ machine, and the
    // mirror keeps it on a few contiguous cache lines.
    for (std::size_t i = sqm.size(); i-- > 0;) {
        const SqMirrorEntry &st = sqm[i];
        if (st.seq > load.seq)
            continue;
        if (!st.addrOk) {
            // Ambiguous older store: the load may speculate past it.
            res.sawAmbiguousOlderStore = true;
            continue;
        }
        if (!rangesOverlap(st.addr, st.size, load.addr, load.size))
            continue;
        if (rangeContains(st.addr, st.size, load.addr, load.size) &&
            st.dataOk) {
            res.forwarded = true;
            res.fwdSsn = st.ssn;
            res.value = extractForward(st.addr, st.data, load);
            return res;
        }
        // Partial overlap, or matching store whose data has not been
        // captured yet: stall until it drains / the data arrives.
        ++hot.partialBlocks;
        res.status = LoadExecResult::Status::BlockedPartial;
        return res;
    }

    res.value = committed.read(load.addr, load.size);
    return res;
}

void
LoadStoreUnit::storeDataReady(DynInst &store)
{
    refreshSqMirror(store);
    // No buffer insertion: the best-effort buffers front the cache
    // banks and hold *committed* stores only (see commitStore).
    // Inserting speculative values here would let a load pick up a
    // younger store's data — a future-value hazard SVW's older-store
    // window cannot detect.
}

InstSeqNum
LoadStoreUnit::storeResolved(DynInst &store)
{
    refreshSqMirror(store);
    if (prm.nlq)
        return 0;  // no LQ CAM; re-execution checks ordering

    // Associative LQ search: oldest younger load that already issued
    // with an overlapping address is a memory-ordering violation.
    ++hot.lqSearches;
    for (DynInst *ld : lq) {
        if (ld->seq <= store.seq)
            continue;
        if (!ld->issued || !ld->addrResolved)
            continue;
        // A load that forwarded from a store younger than (or equal to)
        // this one is not vulnerable to it.
        if (ld->forwarded && ld->fwdStoreSSN >= store.ssn)
            continue;
        if (rangesOverlap(store.addr, store.size, ld->addr, ld->size)) {
            // Optional value-aware search (section 2.2): a silent store
            // whose covered bytes equal what the load already read is
            // no violation.
            if (prm.lqValueCheck && store.dataResolved &&
                rangeContains(store.addr, store.size, ld->addr,
                              ld->size) &&
                extractForward(store, *ld) == ld->loadValue) {
                continue;
            }
            ++hot.lqViolations;
            return ld->seq;
        }
    }
    return 0;
}

} // namespace svw
