#include "lsu/store_sets.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

StoreSets::StoreSets(unsigned ssitEntries, unsigned lfstEntries,
                     stats::StatRegistry &reg)
    : trainings(reg, "storesets.trainings", "violation trainings"),
      loadsConstrained(reg, "storesets.loadsConstrained",
                       "loads given a store dependency at dispatch")
{
    svw_assert(isPowerOf2(ssitEntries), "SSIT entries");
    ssitMask = ssitEntries - 1;
    ssit.assign(ssitEntries, noSet);
    lfst.resize(lfstEntries);
}

InstSeqNum
StoreSets::loadDependency(std::uint64_t loadPc) const
{
    const std::uint32_t set = ssit[ssitIndex(loadPc)];
    if (set == noSet)
        return 0;
    const LfstEntry &e = lfst[set % lfst.size()];
    if (e.storeSeq != 0)
        ++const_cast<StoreSets *>(this)->loadsConstrained;
    return e.storeSeq;
}

InstSeqNum
StoreSets::storeDispatched(std::uint64_t storePc, InstSeqNum seq)
{
    const std::uint32_t set = ssit[ssitIndex(storePc)];
    if (set == noSet)
        return 0;
    LfstEntry &e = lfst[set % lfst.size()];
    const InstSeqNum prev = e.storeSeq;
    e.storeSeq = seq;
    e.storePc = storePc;
    return prev;
}

void
StoreSets::storeResolved(std::uint64_t storePc, InstSeqNum seq)
{
    const std::uint32_t set = ssit[ssitIndex(storePc)];
    if (set == noSet)
        return;
    LfstEntry &e = lfst[set % lfst.size()];
    if (e.storeSeq == seq)
        e.storeSeq = 0;
}

void
StoreSets::storeSquashed(std::uint64_t storePc, InstSeqNum seq)
{
    storeResolved(storePc, seq);
}

void
StoreSets::train(std::uint64_t storePc, std::uint64_t loadPc)
{
    ++trainings;
    std::uint32_t &sSet = ssit[ssitIndex(storePc)];
    std::uint32_t &lSet = ssit[ssitIndex(loadPc)];
    if (sSet == noSet && lSet == noSet) {
        sSet = lSet = nextSetId++ % static_cast<std::uint32_t>(lfst.size());
    } else if (sSet == noSet) {
        sSet = lSet;
    } else if (lSet == noSet) {
        lSet = sSet;
    } else if (sSet != lSet) {
        // Merge: both adopt the smaller id (declares a total order).
        const std::uint32_t winner = sSet < lSet ? sSet : lSet;
        sSet = lSet = winner;
    }
}

} // namespace svw
