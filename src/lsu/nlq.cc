/**
 * @file
 * NLQ-specific helpers.
 *
 * The non-associative LQ organization needs almost no code of its own:
 * the LQ CAM disappears (storeResolved() in conventional.cc returns no
 * violations when prm.nlq is set), the scheduler may issue two stores
 * per cycle (storeIssueWidth), and loads that execute in the presence of
 * older ambiguous stores are marked RexNlqSpec by the core. This file
 * documents that mapping and hosts the marking predicate so the policy
 * is visible in one place.
 */

#include "lsu/lsu.hh"

namespace svw {

namespace nlq {

/**
 * Cain & Lipasti's intra-thread filter heuristic: re-execute only loads
 * that issued in the presence of older stores with unresolved addresses.
 */
bool
shouldMarkLoad(bool nlqEnabled, const LoadExecResult &res)
{
    return nlqEnabled && res.sawAmbiguousOlderStore;
}

} // namespace nlq

} // namespace svw
