/**
 * @file
 * LoadStoreUnit: construction, dispatch, retirement, squash.
 * Execution paths live in conventional.cc (SQ/LQ CAM) and ssq.cc.
 */

#include "lsu/lsu.hh"

#include <algorithm>

#include "base/logging.hh"

namespace svw {

LoadStoreUnit::LoadStoreUnit(const LsuParams &p, MemoryImage &img,
                             SvwUnit &svwUnit, stats::StatRegistry &reg)
    : forwards(reg, "lsu.forwards", "loads forwarded from in-flight stores"),
      bestEffortHits(reg, "lsu.bestEffortHits",
                     "loads served by best-effort buffers (SSQ)"),
      partialBlocks(reg, "lsu.partialBlocks",
                    "load issue retries due to partial store overlap"),
      lqSearches(reg, "lsu.lqSearches", "associative LQ searches"),
      lqViolations(reg, "lsu.lqViolations",
                   "ordering violations found by LQ search"),
      fsqForwards(reg, "lsu.fsqForwards", "forwards out of the FSQ"),
      fsqAllocStalls(reg, "lsu.fsqAllocStalls",
                     "dispatch stalls: FSQ full for a steered store"),
      steeringTrainings(reg, "lsu.steeringTrainings",
                        "steering predictor trainings"),
      prm(p),
      committed(img),
      svw(svwUnit)
{
    forwards.bind(&hot.forwards);
    bestEffortHits.bind(&hot.bestEffortHits);
    partialBlocks.bind(&hot.partialBlocks);
    lqSearches.bind(&hot.lqSearches);
    lqViolations.bind(&hot.lqViolations);
    fsqForwards.bind(&hot.fsqForwards);
    steeringTrainings.bind(&hot.steeringTrainings);

    fwdBufs.resize(2);  // matches the 2-way interleaved L1D
    loadFsqBits.assign(prm.steeringEntries, false);
    storeFsqBits.assign(prm.steeringEntries, false);
}

bool
LoadStoreUnit::fsqFullFor(const DynInst &store) const
{
    if (!prm.ssq || !storeSteeredToFsq(store.pc))
        return false;
    return fsq.size() >= prm.fsqEntries;
}

void
LoadStoreUnit::dispatchLoad(DynInst &load)
{
    svw_assert(!lqFull(), "LQ overflow");
    if (prm.ssq)
        load.fsqLoad = loadSteeredToFsq(load.pc);
    lq.push_back(&load);
}

void
LoadStoreUnit::dispatchStore(DynInst &store)
{
    svw_assert(!sqFull(), "SQ overflow");
    sq.push_back(&store);
    // Snapshot whatever is already known (in the pipeline a store is
    // unresolved at dispatch; unit tests dispatch pre-resolved ones).
    sqm.push_back(SqMirrorEntry{store.seq, store.addr, store.storeData,
                                store.ssn,
                                static_cast<std::uint8_t>(store.size),
                                store.addrResolved, store.dataResolved});
    if (prm.ssq && storeSteeredToFsq(store.pc)) {
        svw_assert(fsq.size() < prm.fsqEntries, "FSQ overflow");
        store.fsqStore = true;
        fsq.push_back(&store);
    }
}

std::uint64_t
LoadStoreUnit::extractForward(const DynInst &store, const DynInst &load)
{
    return extractForward(store.addr, store.storeData, load);
}

std::uint64_t
LoadStoreUnit::extractForward(Addr stAddr, std::uint64_t stData,
                              const DynInst &load)
{
    // Store fully covers the load; shift out the leading bytes.
    const unsigned byteOff = static_cast<unsigned>(load.addr - stAddr);
    std::uint64_t v = stData >> (8 * byteOff);
    if (load.size < 8)
        v &= (std::uint64_t(1) << (8 * load.size)) - 1;
    return v;
}

void
LoadStoreUnit::refreshSqMirror(const DynInst &store)
{
    // sqm is age-ordered (parallel to sq); locate the slot by seq.
    auto it = std::lower_bound(sqm.begin(), sqm.end(), store.seq,
                               [](const SqMirrorEntry &e, InstSeqNum s) {
                                   return e.seq < s;
                               });
    if (it == sqm.end() || it->seq != store.seq)
        return;  // already squashed out
    it->addr = store.addr;
    it->data = store.storeData;
    it->ssn = store.ssn;
    it->addrOk = store.addrResolved;
    it->dataOk = store.dataResolved;
}

LoadExecResult
LoadStoreUnit::executeLoad(DynInst &load, Cycle now)
{
    LoadExecResult res = prm.ssq ? searchSsq(load, now)
                                 : searchSq(load);
    if (res.status != LoadExecResult::Status::Done)
        return res;

    if (res.forwarded) {
        ++hot.forwards;
        load.forwarded = true;
        load.fwdStoreSSN = res.fwdSsn;
        // +UPD: shrink the vulnerability window to the forwarding store.
        // Best-effort forwards do not maintain the invariants required
        // (the matched entry may not be the youngest older store).
        if (!res.bestEffort)
            svw.onStoreForward(load, res.fwdSsn);
    }
    load.loadValue = res.value;
    return res;
}

void
LoadStoreUnit::commitLoad(const DynInst &load)
{
    svw_assert(!lq.empty() && lq.front()->seq == load.seq,
               "LQ commit out of order");
    lq.erase(lq.begin());
}

void
LoadStoreUnit::commitStore(const DynInst &store)
{
    svw_assert(!sq.empty() && sq.front()->seq == store.seq,
               "SQ commit out of order");
    sq.erase(sq.begin());
    sqm.erase(sqm.begin());
    if (prm.ssq) {
        // The committed store enters its bank's best-effort forwarding
        // buffer (an 8-entry window in front of the cache bank).
        // A hit in this buffer is served without re-execution whenever
        // the SVW filter clears the load, so entries must stay equal to
        // committed memory: any older entry this store overlaps is now
        // stale and is dropped (both banks — the overlap can cross the
        // bank interleave even though the new entry lands in one).
        for (auto &b : fwdBufs) {
            std::erase_if(b, [&store](const FwdBufEntry &e) {
                return e.addr < store.addr + store.size &&
                       store.addr < e.addr + e.size;
            });
        }
        const unsigned bank = static_cast<unsigned>(store.addr >> 6) & 1;
        auto &buf = fwdBufs[bank];
        if (buf.size() >= prm.fwdBufEntriesPerBank)
            buf.pop_front();
        // The entry holds the bytes the store wrote, not the raw source
        // register: an exact addr/size hit is served unmasked, and a
        // sub-8-byte store's high register bits are not memory content.
        std::uint64_t data = store.storeData;
        if (store.size < 8)
            data &= (std::uint64_t(1) << (8 * store.size)) - 1;
        buf.push_back(FwdBufEntry{store.addr, store.size, data});
    }
    if (store.fsqStore) {
        auto it = std::find_if(fsq.begin(), fsq.end(),
                               [&store](const DynInst *s) {
                                   return s->seq == store.seq;
                               });
        svw_assert(it != fsq.end(), "FSQ entry lost");
        fsq.erase(it);
    }
}

void
LoadStoreUnit::squashAfter(InstSeqNum keepSeq)
{
    // Squashed entries are a suffix (queues are age-ordered): pop while
    // the tail is younger than the squash point.
    auto prune = [keepSeq](std::vector<DynInst *> &q) {
        while (!q.empty() && q.back()->seq > keepSeq)
            q.pop_back();
    };
    prune(lq);
    prune(sq);
    prune(fsq);
    while (!sqm.empty() && sqm.back().seq > keepSeq)
        sqm.pop_back();
    // Best-effort buffers are not cleaned: they are speculative by
    // construction and re-execution verifies every load under SSQ.
}

bool
LoadStoreUnit::loadSteeredToFsq(std::uint64_t pc) const
{
    return loadFsqBits[steeringIndex(pc)];
}

bool
LoadStoreUnit::storeSteeredToFsq(std::uint64_t pc) const
{
    return storeFsqBits[steeringIndex(pc)];
}

void
LoadStoreUnit::trainSteering(std::uint64_t loadPc, std::uint64_t storePc)
{
    ++hot.steeringTrainings;
    loadFsqBits[steeringIndex(loadPc)] = true;
    if (storePc != ~std::uint64_t(0))
        storeFsqBits[steeringIndex(storePc)] = true;
}

} // namespace svw
