/**
 * @file
 * Pre-commit load re-execution pipeline (paper section 2.1, Figure 1)
 * with the SVW filter stage (section 3) in front of the cache access.
 *
 * The engine walks the ROB in program order behind completion and ahead
 * of commit (the rex-head pointer). Stores pass through the SVW stage —
 * updating the SSBF with their SSN — and wait in a small internal store
 * buffer for their commit-time cache write. Marked loads take the SVW
 * filter test; positives re-read memory through the shared data-cache
 * read/write port (store commit has priority) and compare against the
 * original value. A mismatch makes commit flush the pipeline at the
 * load.
 *
 * The critical serialization the paper analyses — a store may not commit
 * until every older load has re-executed successfully — appears here as
 * the store's commit-eligible cycle being the max of the pending older
 * load re-execution completion cycles.
 *
 * Paper-term map: this is the "re-execution" pipeline of Figure 1 with
 * the SVW stage of Figure 3 inserted; rexNextSeq is the R-head pointer
 * walking the window in order, the internal store buffer is the
 * paper's post-SVW store queue segment, and a "marked" load is one
 * whose optimization (NLQ-LS/NLQ-SM/SSQ/RLE, DynInst::rexReasons)
 * obliges verification before commit. svwReplacesReExecution models
 * section 6's replacement mode: a positive SSBF test flushes instead
 * of re-executing, trading cache-port bandwidth for squashes.
 */

#ifndef SVW_REX_REX_ENGINE_HH
#define SVW_REX_REX_ENGINE_HH

#include <deque>

#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "func/memory_image.hh"
#include "mem/port.hh"
#include "stats/stats.hh"
#include "svw/svw.hh"

namespace svw {

/** Re-execution engine configuration. */
struct RexParams
{
    bool enabled = false;       ///< any load optimization active
    bool perfect = false;       ///< +PERFECT: zero latency, no port use
    unsigned width = 4;         ///< SVW-stage throughput per cycle
    unsigned storeBufferEntries = 4;
    unsigned cacheLatency = 2;  ///< D$ access latency for re-execution
    /** Extra latency for reading address/value from the register file
     * (RLE's elongated pipeline, section 2.4). */
    unsigned regfileReadLatency = 2;
    /**
     * Paper section 6 (future work): use SVW as a *replacement* for
     * re-execution — no verification cache access at all; a positive
     * SSBF test conservatively flushes the load. Requires SVW enabled.
     */
    bool svwReplacesReExecution = false;
};

/** The re-execution engine. */
class RexEngine
{
  public:
    RexEngine(const RexParams &params, MemoryImage &committed,
              SvwUnit &svwUnit, CyclePort &dcachePort,
              stats::StatRegistry &reg);

    const RexParams &params() const { return prm; }

    /** Advance the rex pipeline one cycle. */
    void tick(ROB &rob, RenameState &rename, Cycle now);

    /**
     * Commit-side query: earliest cycle the store may write the cache
     * (all older load re-executions complete by then).
     */
    Cycle storeCommitReadyCycle(const DynInst &store) const;

    /** A store left the ROB (cache write done): drain its buffer slot. */
    void storeCommitted(const DynInst &store);

    /** Squash: drop buffered stores and rewind the rex head. */
    void squashAfter(InstSeqNum keepSeq);

    /**
     * In-order pre-commit memory read for a re-executing load:
     * committed state overlaid with older buffered stores.
     */
    std::uint64_t readRexValue(const DynInst &load) const;

    /** True if @p seq already passed the rex SVW stage. */
    bool processed(InstSeqNum seq) const { return seq < rexNextSeq; }

  public:
    stats::Scalar loadsMarked;
    stats::Scalar loadsReExecuted;
    stats::Scalar loadsRexSkippedSvw;
    stats::Scalar loadsRexFailed;
    stats::Scalar portConflictStalls;
    stats::Scalar storeBufferStalls;
    stats::Scalar svwReplaceFlushes;
    /** Per-marked-load vulnerability window size in stores (the paper
     * reports 5-15 for SSQ): SSNRETIRE at the SVW stage minus ld.SVW. */
    stats::Distribution svwWindowStores;

  private:
    /** Dense hot-loop accumulators, bound to the Scalars above (see
     * stats::Scalar::bind). */
    struct HotCounters
    {
        std::uint64_t loadsMarked = 0;
        std::uint64_t loadsReExecuted = 0;
        std::uint64_t loadsRexSkippedSvw = 0;
        std::uint64_t loadsRexFailed = 0;
        std::uint64_t portConflictStalls = 0;
        std::uint64_t storeBufferStalls = 0;
        std::uint64_t svwReplaceFlushes = 0;
    };
    HotCounters hot;

    /** Can this instruction enter the SVW stage yet? */
    bool rexReady(const DynInst &inst, const RenameState &rename,
                  Cycle now) const;

    /** Perform the cache read + compare for a marked load. */
    void reExecuteLoad(DynInst &load, Cycle now);

    RexParams prm;
    MemoryImage &committed;
    SvwUnit &svw;
    CyclePort &dcachePort;

    InstSeqNum rexNextSeq = 1;     ///< next seq to pass the SVW stage
    /** Buffered (rex-passed, not yet committed) stores, oldest first.
     * Pointers into the ROB ring: a buffered store is always live in
     * the ROB until storeCommitted() or squashAfter() drops it. */
    std::deque<DynInst *> storeBuffer;
    Cycle pendingLoadRexMax = 0;   ///< latest in-flight rex completion
};

} // namespace svw

#endif // SVW_REX_REX_ENGINE_HH
