#include "rex/rex_engine.hh"

#include <cstring>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

RexEngine::RexEngine(const RexParams &p, MemoryImage &img, SvwUnit &s,
                     CyclePort &port, stats::StatRegistry &reg)
    : loadsMarked(reg, "rex.loadsMarked", "loads marked for re-execution"),
      loadsReExecuted(reg, "rex.loadsReExecuted",
                      "loads that performed a re-execution cache access"),
      loadsRexSkippedSvw(reg, "rex.loadsRexSkippedSvw",
                         "marked loads filtered out by SVW"),
      loadsRexFailed(reg, "rex.loadsRexFailed",
                     "re-executions with value mismatch (flush)"),
      portConflictStalls(reg, "rex.portConflictStalls",
                         "cycles rex stalled for the shared D$ port"),
      storeBufferStalls(reg, "rex.storeBufferStalls",
                        "cycles rex stalled on a full store buffer"),
      svwReplaceFlushes(reg, "rex.svwReplaceFlushes",
                        "flushes triggered by SSBF hits in replacement "
                        "mode (section 6)"),
      svwWindowStores(reg, "rex.svwWindowStores",
                      "per-marked-load vulnerability window (stores)",
                      0, 128, 16),
      prm(p),
      committed(img),
      svw(s),
      dcachePort(port)
{
    loadsMarked.bind(&hot.loadsMarked);
    loadsReExecuted.bind(&hot.loadsReExecuted);
    loadsRexSkippedSvw.bind(&hot.loadsRexSkippedSvw);
    loadsRexFailed.bind(&hot.loadsRexFailed);
    portConflictStalls.bind(&hot.portConflictStalls);
    storeBufferStalls.bind(&hot.storeBufferStalls);
    svwReplaceFlushes.bind(&hot.svwReplaceFlushes);
}

bool
RexEngine::rexReady(const DynInst &inst, const RenameState &rename,
                    Cycle now) const
{
    if (inst.isStore())
        return inst.addrResolved && inst.completed;
    if (inst.isLoad()) {
        if (inst.eliminated) {
            const PhysRegFile &f = rename.regs();
            return f.isReady(inst.prs1, now) && f.isReady(inst.prd, now);
        }
        return inst.completed;
    }
    return true;  // non-memory instructions do not flow through rex
}

void
RexEngine::tick(ROB &rob, RenameState &rename, Cycle now)
{
    if (!prm.enabled)
        return;

    unsigned budget = prm.width;
    while (budget > 0) {
        DynInst *inst = rob.lowerBound(rexNextSeq);
        if (!inst)
            return;
        svw_assert(inst->seq >= rexNextSeq, "rex pointer corrupt");

        if (!inst->isMem()) {
            inst->rexProcessed = true;
            rexNextSeq = inst->seq + 1;
            continue;  // free transit; no rex bandwidth consumed
        }

        if (!rexReady(*inst, rename, now))
            return;  // in-order stall at first non-completed mem op

        if (inst->isStore()) {
            if (storeBuffer.size() >= prm.storeBufferEntries) {
                ++hot.storeBufferStalls;
                return;
            }
            if (svw.config().speculativeSsbfUpdate)
                svw.storeUpdate(*inst);
            inst->rexProcessed = true;
            inst->rexDoneCycle = std::max(now + 1, pendingLoadRexMax);
            storeBuffer.push_back(inst);
            rexNextSeq = inst->seq + 1;
            --budget;
            continue;
        }

        // --- load ---
        DynInst &load = *inst;
        if (!load.marked()) {
            load.rexProcessed = true;
            load.rexDone = true;
            load.rexPassed = true;
            rexNextSeq = load.seq + 1;
            continue;
        }

        // Atomic (non-speculative) SSBF updates serialize the filter
        // test behind every older store's cache commit.
        if (svw.enabled() && !svw.config().speculativeSsbfUpdate &&
            !storeBuffer.empty()) {
            return;
        }

        if (!load.rexSvwStageDone) {
            ++hot.loadsMarked;
            --budget;
            load.rexSvwStageDone = true;

            // Eliminated loads read base address (and expected value)
            // from the register file in the elongated pipeline.
            if (load.eliminated) {
                load.addr = effectiveAddr(*load.si,
                                          rename.regs().value(load.prs1));
                load.addrResolved = true;
                load.loadValue = rename.regs().value(load.prd);
            }

            if (prm.perfect) {
                // Ideal re-execution: instant, no bandwidth.
                const std::uint64_t v = readRexValue(load);
                load.rexPassed = (v == load.loadValue);
                if (!load.rexPassed)
                    ++hot.loadsRexFailed;
                ++hot.loadsReExecuted;
                load.rexProcessed = true;
                load.rexDone = true;
                load.rexDoneCycle = now;
                rexNextSeq = load.seq + 1;
                continue;
            }

            if (svw.enabled() && load.svwValid) {
                // Window-size accounting (the paper's "5-15 stores").
                const SSN retired = svw.ssn().retired();
                if (retired >= load.svw)
                    svwWindowStores.sample(retired - load.svw);

                if (!svw.mustReExecute(load)) {
                    ++hot.loadsRexSkippedSvw;
                    load.rexProcessed = true;
                    load.rexDone = true;
                    load.rexPassed = true;
                    load.rexFiltered = true;
                    load.rexDoneCycle = now + 1;
                    rexNextSeq = load.seq + 1;
                    continue;
                }

                if (prm.svwReplacesReExecution && !load.forceRealRex) {
                    // Section 6: no verification access at all; an SSBF
                    // hit conservatively flushes the load.
                    ++hot.svwReplaceFlushes;
                    load.rexProcessed = true;
                    load.rexDone = true;
                    load.rexPassed = false;  // commit flushes at the load
                    load.rexDoneCycle = now + 1;
                    rexNextSeq = load.seq + 1;
                    continue;
                }
            }
            load.rexNeedsCache = true;
        }

        // Needs the cache: arbitrate for the shared port (store commit
        // claimed its slots earlier in the cycle).
        if (!dcachePort.tryClaim(now)) {
            ++hot.portConflictStalls;
            return;
        }
        reExecuteLoad(load, now);
        rexNextSeq = load.seq + 1;
    }
}

void
RexEngine::reExecuteLoad(DynInst &load, Cycle now)
{
    ++hot.loadsReExecuted;
    const std::uint64_t v = readRexValue(load);
    const unsigned extra = load.eliminated ? prm.regfileReadLatency : 0;
    load.rexProcessed = true;
    load.rexDone = true;
    load.rexPassed = (v == load.loadValue);
    load.rexDoneCycle = now + prm.cacheLatency + extra;
    if (!load.rexPassed)
        ++hot.loadsRexFailed;
    if (load.rexDoneCycle > pendingLoadRexMax)
        pendingLoadRexMax = load.rexDoneCycle;
}

std::uint64_t
RexEngine::readRexValue(const DynInst &load) const
{
    std::uint8_t buf[8] = {0};
    committed.readBytes(load.addr, buf, load.size);

    // Overlay older buffered (rex-passed, not yet committed) stores in
    // age order; they are the in-order memory state at this load.
    for (const DynInst *st : storeBuffer) {
        if (st->seq > load.seq)
            break;
        if (!rangesOverlap(st->addr, st->size, load.addr, load.size))
            continue;
        std::uint8_t sbuf[8];
        std::memcpy(sbuf, &st->storeData, 8);
        for (unsigned b = 0; b < st->size; ++b) {
            const Addr byteAddr = st->addr + b;
            if (byteAddr >= load.addr && byteAddr < load.addr + load.size)
                buf[byteAddr - load.addr] = sbuf[b];
        }
    }

    std::uint64_t v = 0;
    std::memcpy(&v, buf, 8);
    return v;
}

Cycle
RexEngine::storeCommitReadyCycle(const DynInst &store) const
{
    if (!prm.enabled)
        return 0;
    return store.rexDoneCycle;
}

void
RexEngine::storeCommitted(const DynInst &store)
{
    if (!prm.enabled)
        return;
    svw_assert(!storeBuffer.empty() &&
               storeBuffer.front()->seq == store.seq,
               "rex store buffer commit out of order");
    storeBuffer.pop_front();
    if (!svw.config().speculativeSsbfUpdate)
        svw.storeUpdate(store);
}

void
RexEngine::squashAfter(InstSeqNum keepSeq)
{
    while (!storeBuffer.empty() && storeBuffer.back()->seq > keepSeq)
        storeBuffer.pop_back();
    if (rexNextSeq > keepSeq + 1)
        rexNextSeq = keepSeq + 1;
}

} // namespace svw
