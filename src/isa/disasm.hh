/**
 * @file
 * Textual disassembly of mini-RISC instructions (debug aid).
 */

#ifndef SVW_ISA_DISASM_HH
#define SVW_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace svw {

/** Render one instruction as assembly text, e.g. "add r3, r1, r2". */
std::string disassemble(const StaticInst &inst);

} // namespace svw

#endif // SVW_ISA_DISASM_HH
