#include "isa/disasm.hh"

#include <sstream>

namespace svw {

namespace {

std::string
reg(RegIndex r)
{
    return "r" + std::to_string(r);
}

} // namespace

std::string
disassemble(const StaticInst &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    switch (inst.cls()) {
      case InstClass::Nop:
      case InstClass::Halt:
        break;
      case InstClass::IntAlu:
      case InstClass::IntMul:
        if (inst.readsRs2()) {
            os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
               << reg(inst.rs2);
        } else if (inst.readsRs1()) {
            os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
               << inst.imm;
        } else {
            os << " " << reg(inst.rd) << ", " << inst.imm;
        }
        break;
      case InstClass::Load:
        os << " " << reg(inst.rd) << ", " << inst.imm << "("
           << reg(inst.rs1) << ")";
        break;
      case InstClass::Store:
        os << " " << reg(inst.rs2) << ", " << inst.imm << "("
           << reg(inst.rs1) << ")";
        break;
      case InstClass::Branch:
        os << " " << reg(inst.rs1) << ", " << reg(inst.rs2) << ", @"
           << inst.imm;
        break;
      case InstClass::Jump:
        if (inst.isCall())
            os << " " << reg(inst.rd) << ", @" << inst.imm;
        else
            os << " @" << inst.imm;
        break;
      case InstClass::JumpReg:
        os << " " << reg(inst.rs1);
        break;
    }
    return os.str();
}

} // namespace svw
