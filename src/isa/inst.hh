/**
 * @file
 * The mini-RISC instruction set used by the synthetic workloads.
 *
 * This is the reproduction's stand-in for the paper's Alpha AXP user-level
 * ISA (run through SimpleScalar). It is a 64-bit load/store RISC with 32
 * integer registers (r0 hardwired to zero), byte/half/word/quad loads and
 * stores, conditional branches, and jump-and-link / jump-register for
 * calls and returns. Instructions are kept decoded (struct form) rather
 * than bit-encoded; a "PC" is an instruction index into the program text.
 */

#ifndef SVW_ISA_INST_HH
#define SVW_ISA_INST_HH

#include <cstdint>
#include <string>

#include "base/logging.hh"
#include "base/types.hh"

namespace svw {

/** Number of architectural integer registers (r0 reads as zero). */
constexpr unsigned numArchRegs = 32;

/** Register conventionally used as the stack pointer by workloads. */
constexpr RegIndex regSp = 30;

/** Register conventionally used as the link register (Jal target). */
constexpr RegIndex regLink = 31;

/** Opcodes of the mini-RISC ISA. */
enum class Opcode : std::uint8_t {
    Nop,
    Halt,

    // ALU register-register
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Mul, Slt, Sltu,

    // ALU register-immediate (rd = rs1 op imm); MovI ignores rs1
    AddI, AndI, OrI, XorI, SllI, SrlI, SraI, SltI, MovI,

    // Loads: rd = mem[rs1 + imm]; zero-extended for sizes < 8
    Ld1, Ld2, Ld4, Ld8,

    // Stores: mem[rs1 + imm] = rs2 (low bytes)
    St1, St2, St4, St8,

    // Control: conditional branches compare rs1 vs rs2, target = imm
    Beq, Bne, Blt, Bge,

    // Unconditional: Jmp target = imm; Jal rd = pc + 1, target = imm;
    // Jr target = rs1 value (an instruction index)
    Jmp, Jal, Jr,

    NumOpcodes
};

/** Coarse classes used by the pipeline for scheduling and queues. */
enum class InstClass : std::uint8_t {
    IntAlu,     ///< single-cycle integer op
    IntMul,     ///< multi-cycle integer multiply
    Load,
    Store,
    Branch,     ///< conditional branch
    Jump,       ///< direct unconditional jump / call
    JumpReg,    ///< indirect jump (return)
    Nop,
    Halt
};

/**
 * Pre-decoded predicate bits (StaticInst::predecode). The dynamic
 * pipeline caches these per instruction at fetch so the scheduling,
 * completion, and commit paths test a bit instead of calling the
 * out-of-line opcode switches below.
 */
enum PreFlag : std::uint16_t {
    PfLoad         = 1 << 0,
    PfStore        = 1 << 1,
    PfCondBranch   = 1 << 2,
    PfDirectCtrl   = 1 << 3,
    PfIndirectCtrl = 1 << 4,
    PfCall         = 1 << 5,
    PfHalt         = 1 << 6,
    PfWritesReg    = 1 << 7,
    PfReadsRs1     = 1 << 8,
    PfReadsRs2     = 1 << 9,

    PfMem  = PfLoad | PfStore,
    PfCtrl = PfCondBranch | PfDirectCtrl | PfIndirectCtrl,
};

/**
 * A decoded static instruction. Program text is a vector of these; the
 * dynamic pipeline references them by PC (index).
 */
struct StaticInst
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;   ///< destination register (0 = discard)
    RegIndex rs1 = 0;  ///< first source / base / branch lhs
    RegIndex rs2 = 0;  ///< second source / store data / branch rhs
    std::int64_t imm = 0;  ///< immediate / mem offset / branch target index

    InstClass cls() const;

    bool isLoad() const;
    bool isStore() const;
    bool isMem() const { return isLoad() || isStore(); }
    bool isCondBranch() const;
    bool isDirectCtrl() const;   ///< Jmp or Jal
    bool isIndirectCtrl() const; ///< Jr
    bool isCtrl() const
    {
        return isCondBranch() || isDirectCtrl() || isIndirectCtrl();
    }
    bool isCall() const { return op == Opcode::Jal; }
    bool isHalt() const { return op == Opcode::Halt; }

    /** Access size in bytes for memory ops, 0 otherwise. */
    unsigned memSize() const;

    /** True if the instruction writes rd (and rd != r0). */
    bool writesReg() const;

    /** True if rs1 (rs2) is a real source for this opcode. */
    bool readsRs1() const;
    bool readsRs2() const;

    /** Execution latency in cycles once issued (cache adds its own). */
    unsigned execLatency() const;

    /** All predicate bits of this instruction, packed (see PreFlag). */
    std::uint16_t predecode() const;
};

/**
 * The fully pre-decoded form of one StaticInst: every answer the
 * out-of-line opcode switches above produce (predicate bits, class,
 * access size, destination register, execute latency, opcode), packed
 * into 8 bytes. Program keeps one table entry per text instruction
 * (Program::predecoded()); fetch binds each DynInst from the table with
 * a straight field copy instead of re-walking ~10 predicate switches
 * per fetched instruction — the static text is decoded once per
 * program, not once per dynamic instruction.
 */
struct PreDecodedInst
{
    std::uint16_t flags = 0;  ///< PreFlag bits (StaticInst::predecode)
    std::uint8_t cls = static_cast<std::uint8_t>(InstClass::Nop);
    std::uint8_t memSize = 0; ///< access size in bytes (mem ops)
    std::uint8_t archRd = 0;  ///< destination register
    std::uint8_t execLat = 1; ///< execution latency in cycles
    std::uint8_t op = static_cast<std::uint8_t>(Opcode::Nop);
};

/** Build the packed pre-decode record for one static instruction. */
PreDecodedInst predecodeInst(const StaticInst &si);

/**
 * Evaluate ALU semantics over a pre-decoded opcode and operand values.
 * Header-inlined: the issue loop executes one of these per issued
 * instruction, and the pipeline caches the opcode in the DynInst hot
 * record (DynInst::opc()) at fetch, so the common ALU ops compile to a
 * flat in-line switch with no out-of-line call and no StaticInst
 * predicate walk.
 *
 * @param op the (pre-decoded) opcode
 * @param imm the instruction's immediate
 * @param a value of rs1
 * @param b value of rs2
 * @param pc the instruction's own PC (for Jal link values)
 * @return value to write to rd (0 if none)
 */
inline std::uint64_t
evalAluOp(Opcode op, std::int64_t simm, std::uint64_t a, std::uint64_t b,
          std::uint64_t pc)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    const std::uint64_t imm = static_cast<std::uint64_t>(simm);

    switch (op) {
      case Opcode::Add:  return a + b;
      case Opcode::Sub:  return a - b;
      case Opcode::And:  return a & b;
      case Opcode::Or:   return a | b;
      case Opcode::Xor:  return a ^ b;
      case Opcode::Sll:  return a << (b & 63);
      case Opcode::Srl:  return a >> (b & 63);
      case Opcode::Sra:  return static_cast<std::uint64_t>(sa >> (b & 63));
      case Opcode::Mul:  return a * b;
      case Opcode::Slt:  return sa < sb ? 1 : 0;
      case Opcode::Sltu: return a < b ? 1 : 0;

      case Opcode::AddI: return a + imm;
      case Opcode::AndI: return a & imm;
      case Opcode::OrI:  return a | imm;
      case Opcode::XorI: return a ^ imm;
      case Opcode::SllI: return a << (imm & 63);
      case Opcode::SrlI: return a >> (imm & 63);
      case Opcode::SraI: return static_cast<std::uint64_t>(sa >> (imm & 63));
      case Opcode::SltI: return sa < simm ? 1 : 0;
      case Opcode::MovI: return imm;

      case Opcode::Jal:  return pc + 1;

      default:
        return 0;
    }
}

/** Evaluate a conditional branch's outcome over a pre-decoded opcode
 * (header-inlined like evalAluOp). */
inline bool
evalBranchTakenOp(Opcode op, std::uint64_t a, std::uint64_t b)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt: return sa < sb;
      case Opcode::Bge: return sa >= sb;
      default:
        svw_panic("evalBranchTaken on non-branch opcode ",
                  static_cast<unsigned>(op));
    }
}

/** StaticInst conveniences over the opcode-keyed evaluators above. */
inline std::uint64_t
evalAlu(const StaticInst &inst, std::uint64_t a, std::uint64_t b,
        std::uint64_t pc)
{
    return evalAluOp(inst.op, inst.imm, a, b, pc);
}

inline bool
evalBranchTaken(const StaticInst &inst, std::uint64_t a, std::uint64_t b)
{
    return evalBranchTakenOp(inst.op, a, b);
}

/** Effective address of a memory instruction. */
inline Addr
effectiveAddr(const StaticInst &inst, std::uint64_t base)
{
    return base + static_cast<std::uint64_t>(inst.imm);
}

/** Opcode mnemonic (for the disassembler and debug output). */
const char *opcodeName(Opcode op);

} // namespace svw

#endif // SVW_ISA_INST_HH
