#include "isa/inst.hh"

#include "base/logging.hh"

namespace svw {

InstClass
StaticInst::cls() const
{
    switch (op) {
      case Opcode::Nop:
        return InstClass::Nop;
      case Opcode::Halt:
        return InstClass::Halt;
      case Opcode::Mul:
        return InstClass::IntMul;
      case Opcode::Ld1: case Opcode::Ld2: case Opcode::Ld4: case Opcode::Ld8:
        return InstClass::Load;
      case Opcode::St1: case Opcode::St2: case Opcode::St4: case Opcode::St8:
        return InstClass::Store;
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt: case Opcode::Bge:
        return InstClass::Branch;
      case Opcode::Jmp: case Opcode::Jal:
        return InstClass::Jump;
      case Opcode::Jr:
        return InstClass::JumpReg;
      default:
        return InstClass::IntAlu;
    }
}

bool
StaticInst::isLoad() const
{
    return op == Opcode::Ld1 || op == Opcode::Ld2 || op == Opcode::Ld4 ||
        op == Opcode::Ld8;
}

bool
StaticInst::isStore() const
{
    return op == Opcode::St1 || op == Opcode::St2 || op == Opcode::St4 ||
        op == Opcode::St8;
}

bool
StaticInst::isCondBranch() const
{
    return op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Blt ||
        op == Opcode::Bge;
}

bool
StaticInst::isDirectCtrl() const
{
    return op == Opcode::Jmp || op == Opcode::Jal;
}

bool
StaticInst::isIndirectCtrl() const
{
    return op == Opcode::Jr;
}

unsigned
StaticInst::memSize() const
{
    switch (op) {
      case Opcode::Ld1: case Opcode::St1: return 1;
      case Opcode::Ld2: case Opcode::St2: return 2;
      case Opcode::Ld4: case Opcode::St4: return 4;
      case Opcode::Ld8: case Opcode::St8: return 8;
      default: return 0;
    }
}

bool
StaticInst::writesReg() const
{
    if (rd == 0)
        return false;
    switch (cls()) {
      case InstClass::IntAlu:
      case InstClass::IntMul:
      case InstClass::Load:
        return true;
      case InstClass::Jump:
        return op == Opcode::Jal;
      default:
        return false;
    }
}

bool
StaticInst::readsRs1() const
{
    switch (op) {
      case Opcode::Nop: case Opcode::Halt: case Opcode::MovI:
      case Opcode::Jmp: case Opcode::Jal:
        return false;
      default:
        return true;
    }
}

bool
StaticInst::readsRs2() const
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And: case Opcode::Or:
      case Opcode::Xor: case Opcode::Sll: case Opcode::Srl: case Opcode::Sra:
      case Opcode::Mul: case Opcode::Slt: case Opcode::Sltu:
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt: case Opcode::Bge:
      case Opcode::St1: case Opcode::St2: case Opcode::St4: case Opcode::St8:
        return true;
      default:
        return false;
    }
}

std::uint16_t
StaticInst::predecode() const
{
    std::uint16_t f = 0;
    if (isLoad())
        f |= PfLoad;
    if (isStore())
        f |= PfStore;
    if (isCondBranch())
        f |= PfCondBranch;
    if (isDirectCtrl())
        f |= PfDirectCtrl;
    if (isIndirectCtrl())
        f |= PfIndirectCtrl;
    if (isCall())
        f |= PfCall;
    if (isHalt())
        f |= PfHalt;
    if (writesReg())
        f |= PfWritesReg;
    if (readsRs1())
        f |= PfReadsRs1;
    if (readsRs2())
        f |= PfReadsRs2;
    return f;
}

unsigned
StaticInst::execLatency() const
{
    switch (cls()) {
      case InstClass::IntMul:
        return 3;
      default:
        return 1;
    }
}

PreDecodedInst
predecodeInst(const StaticInst &si)
{
    PreDecodedInst p;
    p.flags = si.predecode();
    p.cls = static_cast<std::uint8_t>(si.cls());
    p.memSize = static_cast<std::uint8_t>(si.memSize());
    p.archRd = static_cast<std::uint8_t>(si.rd);
    p.execLat = static_cast<std::uint8_t>(si.execLatency());
    p.op = static_cast<std::uint8_t>(si.op);
    return p;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Mul: return "mul";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::AddI: return "addi";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::SllI: return "slli";
      case Opcode::SrlI: return "srli";
      case Opcode::SraI: return "srai";
      case Opcode::SltI: return "slti";
      case Opcode::MovI: return "movi";
      case Opcode::Ld1: return "ld1";
      case Opcode::Ld2: return "ld2";
      case Opcode::Ld4: return "ld4";
      case Opcode::Ld8: return "ld8";
      case Opcode::St1: return "st1";
      case Opcode::St2: return "st2";
      case Opcode::St4: return "st4";
      case Opcode::St8: return "st8";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Jal: return "jal";
      case Opcode::Jr: return "jr";
      default: return "???";
    }
}

} // namespace svw
