#include "svw/ssn.hh"

#include "base/logging.hh"

namespace svw {

SsnState::SsnState(unsigned bits)
    : _bits(bits)
{
    svw_assert(bits >= 4 && bits <= 64, "bad SSN width ", bits);
    mask = bits == 64 ? ~SSN(0) : ((SSN(1) << bits) - 1);
}

bool
SsnState::nextAssignWraps() const
{
    return ((ssnDispatch + 1) & mask) == 0;
}

SSN
SsnState::assign()
{
    svw_assert(!nextAssignWraps(),
               "SSN assigned across wrap without drain");
    return ++ssnDispatch;
}

void
SsnState::ackWrap()
{
    svw_assert(nextAssignWraps(), "ackWrap without pending wrap");
    ++ssnDispatch;  // consume the reserved truncated-zero value
}

} // namespace svw
