/**
 * @file
 * Store Sequence Bloom Filter (SSBF) — the paper's table of retired-store
 * SSNs, indexed by low-order address bits (tagless; aliasing can only
 * cause false positives, i.e., superfluous re-executions).
 *
 * Supported organizations mirror Figure 8's sensitivity study:
 *  - "simple" filters of 128/512/2048 entries at 8-byte granularity,
 *  - a dual-hash "Bloom" configuration (second table indexed by the next
 *    address bits; a load re-executes only if it hits in both),
 *  - 4-byte granularity, and
 *  - an infinite (exact, per-granule) filter.
 *
 * For NLQ-SM, the SSBF is logically banked by word-in-line so a cache
 * line invalidation can update every granule of the line in one shot
 * (section 3.2); invalidate() models that.
 *
 * Paper-term map: SSBF[A] approximates "the SSN of the youngest store
 * that wrote address granule A". The filter test for a marked load is
 * SSBF[ld.addr] > ld.SVW => re-execute (a store the load is vulnerable
 * to may have hit its address). Stores update the table at their rex
 * SVW stage (speculative update, section 3.6) or at their cache commit
 * (atomic variant); wrap-around of the finite SSN width flash-clears
 * it behind a pipeline drain.
 */

#ifndef SVW_SVW_SSBF_HH
#define SVW_SVW_SSBF_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "stats/stats.hh"

namespace svw {

/** SSBF organization. */
struct SsbfParams
{
    unsigned entries = 512;          ///< entries per table
    unsigned granularityBytes = 8;   ///< conflict-tracking granule
    bool dualHash = false;           ///< Figure 8 "Bloom" configuration
    bool infinite = false;           ///< exact per-granule tracking
};

/**
 * The SSBF. Entries hold *truncated* SSNs as the hardware would; the
 * caller compares against truncated load SVWs. Value 0 means "no store
 * to a matching address since the last clear".
 */
class SSBF
{
  public:
    SSBF(const SsbfParams &params, stats::StatRegistry &reg);

    /** Store (at its rex SVW stage) records its SSN for its granule(s). */
    void update(Addr addr, unsigned size, SSN truncSsn);

    /**
     * Coherence invalidation: pretend an asynchronous store hit every
     * granule of the line (write SSNRENAME+1 per section 3.2).
     */
    void invalidateLine(Addr lineAddr, unsigned lineBytes, SSN truncSsn);

    /**
     * Re-execution filter test: true if some store the load may be
     * vulnerable to wrote a matching address, i.e.
     * SSBF[ld.addr] > ld.SVW (per granule; any granule positive =>
     * re-execute).
     */
    bool test(Addr addr, unsigned size, SSN truncSvw) const;

    /** Flash clear (SSN wrap-around drain). */
    void clear();

    /** Storage cost in bytes for a given SSN width (reporting). */
    std::uint64_t storageBits(unsigned ssnBits) const;

  public:
    stats::Scalar updates;
    stats::Scalar invalidationUpdates;
    stats::Scalar tests;
    stats::Scalar positives;

  private:
    /** Dense hot-loop accumulators, bound to the Scalars above (see
     * stats::Scalar::bind); mutable so the const filter test can count. */
    mutable struct HotCounters
    {
        std::uint64_t updates = 0;
        std::uint64_t invalidationUpdates = 0;
        std::uint64_t tests = 0;
        std::uint64_t positives = 0;
    } hot;

    SsbfParams params;
    unsigned granShift;
    unsigned idxShift;  ///< exactLog2(entries), cached (table-2 hash)
    std::vector<SSN> table1;
    std::vector<SSN> table2;            ///< dual-hash second table
    std::unordered_map<Addr, SSN> exact;  ///< infinite configuration

    SSN lookup(Addr granule) const;
    void store(Addr granule, SSN truncSsn);
};

} // namespace svw

#endif // SVW_SVW_SSBF_HH
