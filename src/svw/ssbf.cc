#include "svw/ssbf.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

SSBF::SSBF(const SsbfParams &p, stats::StatRegistry &reg)
    : updates(reg, "ssbf.updates", "store SSN writes"),
      invalidationUpdates(reg, "ssbf.invalidationUpdates",
                          "granule updates from line invalidations"),
      tests(reg, "ssbf.tests", "re-execution filter tests"),
      positives(reg, "ssbf.positives", "positive tests (must re-execute)"),
      params(p)
{
    updates.bind(&hot.updates);
    invalidationUpdates.bind(&hot.invalidationUpdates);
    tests.bind(&hot.tests);
    positives.bind(&hot.positives);

    svw_assert(p.granularityBytes == 4 || p.granularityBytes == 8,
               "SSBF granularity must be 4 or 8 bytes");
    svw_assert(isPowerOf2(p.entries), "SSBF entries must be a power of two");
    granShift = exactLog2(p.granularityBytes);
    idxShift = p.infinite ? 0 : exactLog2(p.entries);
    if (!p.infinite) {
        table1.assign(p.entries, 0);
        if (p.dualHash)
            table2.assign(p.entries, 0);
    }
}

SSN
SSBF::lookup(Addr granule) const
{
    if (params.infinite) {
        auto it = exact.find(granule);
        return it == exact.end() ? 0 : it->second;
    }
    const SSN v1 = table1[granule & (params.entries - 1)];
    if (!params.dualHash)
        return v1;
    const SSN v2 = table2[(granule >> idxShift) & (params.entries - 1)];
    // A load must re-execute only if both tables say so; returning the
    // smaller entry makes a single ">" comparison implement that.
    return std::min(v1, v2);
}

void
SSBF::store(Addr granule, SSN truncSsn)
{
    if (params.infinite) {
        exact[granule] = truncSsn;
        return;
    }
    table1[granule & (params.entries - 1)] = truncSsn;
    if (params.dualHash) {
        table2[(granule >> idxShift) & (params.entries - 1)] = truncSsn;
    }
}

void
SSBF::update(Addr addr, unsigned size, SSN truncSsn)
{
    const Addr first = addr >> granShift;
    const Addr last = (addr + size - 1) >> granShift;
    for (Addr g = first; g <= last; ++g) {
        ++hot.updates;
        store(g, truncSsn);
    }
}

void
SSBF::invalidateLine(Addr lineAddr, unsigned lineBytes, SSN truncSsn)
{
    const Addr first = lineAddr >> granShift;
    const Addr last = (lineAddr + lineBytes - 1) >> granShift;
    for (Addr g = first; g <= last; ++g) {
        ++hot.invalidationUpdates;
        store(g, truncSsn);
    }
}

bool
SSBF::test(Addr addr, unsigned size, SSN truncSvw) const
{
    ++hot.tests;
    const Addr first = addr >> granShift;
    const Addr last = (addr + size - 1) >> granShift;
    for (Addr g = first; g <= last; ++g) {
        if (lookup(g) > truncSvw) {
            ++hot.positives;
            return true;
        }
    }
    return false;
}

void
SSBF::clear()
{
    std::fill(table1.begin(), table1.end(), 0);
    std::fill(table2.begin(), table2.end(), 0);
    exact.clear();
}

std::uint64_t
SSBF::storageBits(unsigned ssnBits) const
{
    if (params.infinite)
        return 0;  // not implementable; reported as zero
    std::uint64_t cells = params.entries * (params.dualHash ? 2 : 1);
    return cells * ssnBits;
}

} // namespace svw
