#include "svw/svw.hh"

#include "base/logging.hh"
#include "cpu/dyninst.hh"

namespace svw {

SvwUnit::SvwUnit(const SvwConfig &c, stats::StatRegistry &reg)
    : loadsFiltered(reg, "svw.loadsFiltered",
                    "marked loads whose re-execution SVW filtered out"),
      loadsTested(reg, "svw.loadsTested", "marked loads tested against SSBF"),
      wrapDrains(reg, "svw.wrapDrains", "SSN wrap-around pipeline drains"),
      cfg(c),
      ssnState(c.ssnBits),
      filter(c.ssbf, reg)
{
    loadsFiltered.bind(&hot.loadsFiltered);
    loadsTested.bind(&hot.loadsTested);
}

void
SvwUnit::onStoreForward(DynInst &load, SSN storeSsn) const
{
    if (!cfg.enabled || !cfg.updateOnForward)
        return;
    // The forwarding store is older than the load, so its SSN can only
    // grow the "not vulnerable" prefix.
    if (storeSsn > load.svw)
        load.svw = storeSsn;
}

bool
SvwUnit::mustReExecute(const DynInst &load)
{
    svw_assert(cfg.enabled, "SVW test while disabled");
    ++hot.loadsTested;
    const bool rex = filter.test(load.addr, load.size,
                                 ssnState.trunc(load.svw));
    if (!rex)
        ++hot.loadsFiltered;
    return rex;
}

void
SvwUnit::storeUpdate(const DynInst &store)
{
    if (!cfg.enabled)
        return;
    filter.update(store.addr, store.size, ssnState.trunc(store.ssn));
}

void
SvwUnit::invalidation(Addr lineAddr, unsigned lineBytes)
{
    if (!cfg.enabled)
        return;
    // Pretend an asynchronous store younger than everything in flight
    // wrote the whole line: SSBF[inval.addr] = SSNRENAME + 1. If that
    // value truncates to the reserved 0 (wrap imminent), substitute the
    // maximum so the write stays conservative rather than vanishing.
    SSN v = ssnState.trunc(ssnState.ssnRename() + 1);
    if (v == 0)
        v = ssnState.trunc(~SSN(0));
    filter.invalidateLine(lineAddr, lineBytes, v);
}

void
SvwUnit::wrapClear()
{
    ++wrapDrains;
    filter.clear();
}

} // namespace svw
