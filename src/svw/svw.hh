/**
 * @file
 * SvwUnit: ties SSN numbering and the SSBF together and implements the
 * per-optimization SVW assignment policies of paper sections 3.1-3.5.
 *
 * Paper-term map: a load's SVW ("store vulnerability window") names the
 * youngest older store the load is provably NOT vulnerable to, as an
 * SSN; the load is vulnerable to the interval (ld.SVW, ld's dispatch
 * point]. The filter test (section 3) re-executes a marked load only if
 * SSBF[ld.addr] > ld.SVW — some store the load is vulnerable to wrote
 * its address granule. Assignment policies: SSNRETIRE at dispatch for
 * NLQ/SSQ loads (section 3.1); the forwarding store's SSN on a
 * store-forward under +UPD (section 3.3, onStoreForward); the IT
 * entry's SSN for RLE-eliminated loads (section 3.4); and the min
 * composition of those under NLQ-SM (section 3.5, composeSvw).
 */

#ifndef SVW_SVW_SVW_HH
#define SVW_SVW_SVW_HH

#include "stats/stats.hh"
#include "svw/ssbf.hh"
#include "svw/ssn.hh"

namespace svw {

struct DynInst;

/** SVW configuration for a run. */
struct SvwConfig
{
    bool enabled = false;
    /** "update SVW on store-forward" extension (+UPD vs -UPD). */
    bool updateOnForward = true;
    unsigned ssnBits = 16;
    SsbfParams ssbf{};
    /**
     * Speculative SSBF updates (section 3.6): stores write the SSBF at
     * their rex SVW stage, before their cache write; flushes do not undo
     * them. The atomic alternative (false) delays the SSBF write to the
     * store's actual cache commit, lengthening the serialization.
     */
    bool speculativeSsbfUpdate = true;
};

/**
 * The SVW mechanism. One instance per core; consulted by dispatch (SVW
 * assignment), by the LSU (forwarding updates), and by the re-execution
 * engine (filter test + store updates).
 */
class SvwUnit
{
  public:
    SvwUnit(const SvwConfig &cfg, stats::StatRegistry &reg);

    const SvwConfig &config() const { return cfg; }
    bool enabled() const { return cfg.enabled; }

    SsnState &ssn() { return ssnState; }
    const SsnState &ssn() const { return ssnState; }
    SSBF &ssbf() { return filter; }

    /**
     * SVW for a load at dispatch under NLQ-LS / NLQ-SM / SSQ: the load
     * is vulnerable to every store in flight at dispatch, so its SVW is
     * SSNRETIRE (section 3.1).
     */
    SSN svwAtDispatch() const { return ssnState.retired(); }

    /**
     * Forwarding shrink (+UPD): a load that reads from an in-flight
     * store is invulnerable to that store and everything older.
     */
    void onStoreForward(DynInst &load, SSN storeSsn) const;

    /** RLE: eliminated load takes the IT entry's SSN (section 3.4). */
    static SSN composeSvw(SSN a, SSN b) { return a < b ? a : b; }

    /**
     * Re-execution filter test for a marked load whose address is known.
     * @return true if the load must re-execute.
     */
    bool mustReExecute(const DynInst &load);

    /** Store SSBF update at its rex SVW stage (or cache commit). */
    void storeUpdate(const DynInst &store);

    /** Coherence invalidation (NLQ-SM): SSBF[line] = SSNRENAME + 1. */
    void invalidation(Addr lineAddr, unsigned lineBytes);

    /** Wrap-around drain completed: flash-clear state. */
    void wrapClear();

  public:
    stats::Scalar loadsFiltered;
    stats::Scalar loadsTested;
    stats::Scalar wrapDrains;

  private:
    /** Dense hot-loop accumulators, bound to the Scalars above (see
     * stats::Scalar::bind). */
    struct HotCounters
    {
        std::uint64_t loadsFiltered = 0;
        std::uint64_t loadsTested = 0;
    };
    HotCounters hot;

    SvwConfig cfg;
    SsnState ssnState;
    SSBF filter;
};

} // namespace svw

#endif // SVW_SVW_SVW_HH
