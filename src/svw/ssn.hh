/**
 * @file
 * Store sequence numbering (paper section 3).
 *
 * Every dynamic store gets a monotonically increasing SSN. Only
 * SSNRETIRE (last retired store) needs to exist architecturally; in-flight
 * stores' SSNs are implied by SQ position. The simulator materializes the
 * numbers for convenience but respects the paper's finite-width
 * wrap-around policy (section 3.6): when SSNRENAME wraps, drain the
 * pipeline and flash-clear the SSBF (and the IT under RLE) so no load's
 * vulnerability range straddles the wrap point.
 *
 * Paper-term map: SSNRENAME is the SSN of the youngest store dispatched
 * (assigned at rename/dispatch; assign() here), SSNRETIRE the SSN of
 * the youngest store retired (onRetire). Squash rolls SSNRENAME back to
 * the youngest surviving store (rollbackTo). Loads' SVWs and the SSBF's
 * entries are expressed in this numbering.
 */

#ifndef SVW_SVW_SSN_HH
#define SVW_SVW_SSN_HH

#include <cstdint>

#include "base/types.hh"

namespace svw {

/** SSN allocation and retirement state with finite-width wrap handling. */
class SsnState
{
  public:
    /** @param bits SSN width; 64 (default) behaves as infinite. */
    explicit SsnState(unsigned bits = 16);

    unsigned bits() const { return _bits; }

    /** Truncate a full SSN to implementation width. */
    SSN trunc(SSN ssn) const { return ssn & mask; }

    /**
     * True if assigning the next store SSN requires the wrap-around
     * drain first (next truncated value would be 0).
     */
    bool nextAssignWraps() const;

    /**
     * Assign the next SSN (call only when !nextAssignWraps() or after
     * the drain completed and ackWrap() was called).
     */
    SSN assign();

    /** Acknowledge a completed wrap drain: skip truncated value 0. */
    void ackWrap();

    /** Squash recovery: restore allocation point. */
    void rollbackTo(SSN lastValid) { ssnDispatch = lastValid; }

    /** SSN of the youngest dispatched store (SSNRENAME analogue). */
    SSN ssnRename() const { return ssnDispatch; }

    /** Record store retirement. */
    void onRetire(SSN ssn) { ssnRetire = ssn; }

    /** SSN of the last retired store (the global SSNRETIRE). */
    SSN retired() const { return ssnRetire; }

  private:
    unsigned _bits;
    SSN mask;
    SSN ssnDispatch = 0;  ///< last assigned (0 = none yet; 0 is reserved)
    SSN ssnRetire = 0;
};

} // namespace svw

#endif // SVW_SVW_SSN_HH
