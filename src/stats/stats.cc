#include "stats/stats.hh"

#include <iomanip>

#include "base/logging.hh"

namespace svw::stats {

StatBase::StatBase(StatRegistry &reg, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    reg.add(this);
}

Scalar::Scalar(StatRegistry &reg, std::string name, std::string desc)
    : StatBase(reg, std::move(name), std::move(desc))
{
}

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::right << std::setw(16) << value()
       << "  # " << desc() << "\n";
}

Average::Average(StatRegistry &reg, std::string name, std::string desc)
    : StatBase(reg, std::move(name), std::move(desc))
{
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::right << std::setw(16) << std::fixed << std::setprecision(4)
       << mean() << "  # " << desc() << " (n=" << _count << ")\n";
}

Distribution::Distribution(StatRegistry &reg, std::string name,
                           std::string desc, std::uint64_t min,
                           std::uint64_t max, unsigned buckets)
    : StatBase(reg, std::move(name), std::move(desc)),
      _min(min), _max(max), _counts(buckets, 0)
{
    svw_assert(max > min && buckets > 0, "bad distribution shape");
    _bucketWidth = (max - min + buckets - 1) / buckets;
}

void
Distribution::sample(std::uint64_t v)
{
    ++_samples;
    _sum += static_cast<double>(v);
    if (v < _min) {
        ++_under;
    } else if (v >= _max) {
        ++_over;
    } else {
        unsigned idx = static_cast<unsigned>((v - _min) / _bucketWidth);
        if (idx >= _counts.size())
            idx = static_cast<unsigned>(_counts.size()) - 1;
        ++_counts[idx];
    }
}

void
Distribution::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " mean="
       << std::fixed << std::setprecision(2) << mean()
       << " n=" << _samples << "  # " << desc() << "\n";
    for (unsigned i = 0; i < _counts.size(); ++i) {
        if (_counts[i] == 0)
            continue;
        os << "    [" << (_min + i * _bucketWidth) << ","
           << (_min + (i + 1) * _bucketWidth) << ") "
           << _counts[i] << "\n";
    }
    if (_under)
        os << "    underflow " << _under << "\n";
    if (_over)
        os << "    overflow  " << _over << "\n";
}

void
Distribution::reset()
{
    _under = _over = _samples = 0;
    _sum = 0.0;
    std::fill(_counts.begin(), _counts.end(), 0);
}

void
StatRegistry::printAll(std::ostream &os) const
{
    for (const StatBase *s : _stats)
        s->print(os);
}

void
StatRegistry::resetAll()
{
    for (StatBase *s : _stats)
        s->reset();
}

void
StatRegistry::flushAll()
{
    for (StatBase *s : _stats)
        s->flush();
}

const StatBase *
StatRegistry::find(const std::string &name) const
{
    for (const StatBase *s : _stats)
        if (s->name() == name)
            return s;
    return nullptr;
}

} // namespace svw::stats
