/**
 * @file
 * A small statistics package in the spirit of gem5's stats framework.
 *
 * Stats are owned by the module that increments them and registered with a
 * StatRegistry so the harness can enumerate and print them uniformly.
 * Three stat kinds cover everything the reproduction needs:
 *
 *  - Scalar: a monotonically increasing 64-bit event counter.
 *  - Average: a sum/count pair reporting a mean.
 *  - Distribution: fixed-width histogram with underflow/overflow buckets.
 *
 * Hot-loop batching: a Scalar may be *bound* (Scalar::bind) to a plain
 * uint64_t accumulator field the owning module keeps in a dense
 * per-module block. Hot paths then increment the plain field — one
 * store into a block the loop already has in cache, instead of chasing
 * scattered Scalar objects interleaved with their name/desc strings.
 * value(), print(), and reset() account for the unflushed accumulator,
 * so every observation is exact at any instant and the printed stat
 * block is byte-identical to direct counting; flush() (or
 * StatRegistry::flushAll at a sample boundary) folds the accumulator
 * into the registered value. Direct increments on a bound Scalar remain
 * legal (cold paths may keep using ++stat).
 */

#ifndef SVW_STATS_STATS_HH
#define SVW_STATS_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace svw::stats {

class StatRegistry;

/** Common behaviour: a name, a description, printing, and reset. */
class StatBase
{
  public:
    StatBase(StatRegistry &reg, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Print "name value # desc" line(s). */
    virtual void print(std::ostream &os) const = 0;

    /** Zero the stat (between warm-up and measurement). */
    virtual void reset() = 0;

    /** Fold any bound hot-loop accumulator into the stored value
     * (sample boundary). No-op for unbound stats. */
    virtual void flush() {}

  private:
    std::string _name;
    std::string _desc;
};

/** Monotonic event counter. */
class Scalar : public StatBase
{
  public:
    Scalar(StatRegistry &reg, std::string name, std::string desc);

    /**
     * Bind a hot-loop accumulator (a field in the owner's dense counter
     * block; must outlive the Scalar). Unflushed accumulator contents
     * are part of value() from then on; reset() zeroes both.
     */
    void bind(std::uint64_t *accum) { _accum = accum; }

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(std::uint64_t n) { _value += n; return *this; }

    std::uint64_t value() const
    {
        return _value + (_accum ? *_accum : 0);
    }

    void print(std::ostream &os) const override;
    void reset() override
    {
        _value = 0;
        if (_accum)
            *_accum = 0;
    }
    void flush() override
    {
        if (_accum) {
            _value += *_accum;
            *_accum = 0;
        }
    }

  private:
    std::uint64_t _value = 0;
    std::uint64_t *_accum = nullptr;  ///< bound hot accumulator (optional)
};

/** Mean of sampled values. */
class Average : public StatBase
{
  public:
    Average(StatRegistry &reg, std::string name, std::string desc);

    void sample(double v) { _sum += v; ++_count; }

    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t count() const { return _count; }

    void print(std::ostream &os) const override;
    void reset() override { _sum = 0.0; _count = 0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/** Histogram over [min, max) with @p buckets equal-width buckets. */
class Distribution : public StatBase
{
  public:
    Distribution(StatRegistry &reg, std::string name, std::string desc,
                 std::uint64_t min, std::uint64_t max, unsigned buckets);

    void sample(std::uint64_t v);

    std::uint64_t totalSamples() const { return _samples; }
    std::uint64_t bucketCount(unsigned i) const { return _counts.at(i); }
    std::uint64_t underflows() const { return _under; }
    std::uint64_t overflows() const { return _over; }
    double mean() const { return _samples ? _sum / _samples : 0.0; }

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t _min;
    std::uint64_t _max;
    std::uint64_t _bucketWidth;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _under = 0;
    std::uint64_t _over = 0;
    std::uint64_t _samples = 0;
    double _sum = 0.0;
};

/**
 * Owner of (pointers to) all stats created against it. Modules construct
 * their stats with a registry reference; the harness prints or resets the
 * registry as a whole.
 */
class StatRegistry
{
  public:
    void add(StatBase *stat) { _stats.push_back(stat); }

    void printAll(std::ostream &os) const;
    void resetAll();

    /** Sample boundary: fold every bound accumulator into its stat. */
    void flushAll();

    /** Find a stat by name (nullptr if absent); used by tests/harness. */
    const StatBase *find(const std::string &name) const;

    const std::vector<StatBase *> &all() const { return _stats; }

  private:
    std::vector<StatBase *> _stats;
};

} // namespace svw::stats

#endif // SVW_STATS_STATS_HH
